//! The HVSQ metric (paper Eqn. 2).
//!
//! Given a reference image, an altered image, and the eccentricity of every
//! pixel, HVSQ measures how discriminable the two images are to a human:
//!
//! ```text
//! HVSQ = 1/N Σᵢ [ ‖M(Iᵃᵢ) − M(Iʳᵢ)‖² + ‖σ(Iᵃᵢ) − σ(Iʳᵢ)‖² ]
//! ```
//!
//! where `Iᵢ` is the *spatial pooling* of pixel `i` — a window whose size
//! grows (quadratically) with eccentricity — and `M`/`σ` are the mean and
//! standard deviation of early-vision features inside the pool. A lower
//! HVSQ means the altered image is harder to tell apart from the reference.

use crate::eccentricity::EccentricityMap;
use crate::features::FeatureMaps;
use ms_render::Image;
use serde::{Deserialize, Serialize};

/// Pooling-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HvsqOptions {
    /// Minimum pool diameter in degrees (foveal pooling is not a point).
    pub min_pool_deg: f32,
    /// Linear growth of pool diameter per degree of eccentricity
    /// (Bouma's-law-like crowding term).
    pub linear_rate: f32,
    /// Quadratic growth term per degree² — "the pooling size increases with
    /// eccentricity, usually quadratically" (paper §2.2).
    pub quadratic_rate: f32,
    /// Largest allowed pool diameter in degrees (keeps pools bounded at the
    /// far periphery).
    pub max_pool_deg: f32,
    /// Evaluate statistics on a subsampled pixel grid with this stride
    /// (1 = every pixel). HVSQ is an average over pools; a stride > 1 is an
    /// unbiased speedup used during iterative training.
    pub stride: u32,
}

impl Default for HvsqOptions {
    fn default() -> Self {
        Self {
            min_pool_deg: 0.5,
            linear_rate: 0.30,
            quadratic_rate: 0.010,
            max_pool_deg: 12.0,
            stride: 1,
        }
    }
}

impl HvsqOptions {
    /// Pool diameter in degrees at a given eccentricity.
    pub fn pool_diameter_deg(&self, ecc_deg: f32) -> f32 {
        (self.min_pool_deg + self.linear_rate * ecc_deg + self.quadratic_rate * ecc_deg * ecc_deg)
            .min(self.max_pool_deg)
    }
}

/// HVSQ evaluator bound to a display/gaze geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Hvsq {
    ecc: EccentricityMap,
    options: HvsqOptions,
}

impl Hvsq {
    /// Evaluator with the gaze at the display center and default pooling.
    pub fn new(display: crate::DisplayGeometry) -> Self {
        Self::with_options(EccentricityMap::centered(display), HvsqOptions::default())
    }

    /// Evaluator with an explicit eccentricity map and pooling options.
    pub fn with_options(ecc: EccentricityMap, options: HvsqOptions) -> Self {
        Self { ecc, options }
    }

    /// The eccentricity map in use.
    pub fn eccentricity(&self) -> &EccentricityMap {
        &self.ecc
    }

    /// The pooling options in use.
    pub fn options(&self) -> &HvsqOptions {
        &self.options
    }

    /// Evaluate HVSQ of `altered` against `reference`.
    ///
    /// `band` optionally restricts the average to pixels whose eccentricity
    /// lies in `[band.0, band.1)` degrees — the per-quality-region HVSQ used
    /// to control each foveation level during training (paper §4.3). Returns
    /// 0 when no pixel falls in the band.
    ///
    /// # Panics
    ///
    /// Panics when the images' dimensions differ from each other or from
    /// the display geometry.
    pub fn evaluate(&self, reference: &Image, altered: &Image, band: Option<(f32, f32)>) -> f32 {
        let d = self.ecc.display();
        assert_eq!((reference.width(), reference.height()), (d.width, d.height));
        assert_eq!((altered.width(), altered.height()), (d.width, d.height));
        let fr = FeatureMaps::extract(reference);
        let fa = FeatureMaps::extract(altered);
        let ppd = d.pixels_per_degree();
        let stride = self.options.stride.max(1);

        let mut acc = 0.0f64;
        let mut count = 0usize;
        for y in (0..d.height).step_by(stride as usize) {
            for x in (0..d.width).step_by(stride as usize) {
                let ecc = self.ecc.at(x, y);
                if let Some((lo, hi)) = band {
                    if ecc < lo || ecc >= hi {
                        continue;
                    }
                }
                let radius_px =
                    ((self.options.pool_diameter_deg(ecc) * ppd * 0.5).round() as i64).max(1);
                let (x, y) = (x as i64, y as i64);
                let mut pixel_term = 0.0f64;
                for c in 0..fr.channels {
                    let (mr, sr) = fr.integrals[c].window_stats(
                        x - radius_px,
                        y - radius_px,
                        x + radius_px + 1,
                        y + radius_px + 1,
                    );
                    let (ma, sa) = fa.integrals[c].window_stats(
                        x - radius_px,
                        y - radius_px,
                        x + radius_px + 1,
                        y + radius_px + 1,
                    );
                    pixel_term += ((ma - mr) as f64).powi(2) + ((sa - sr) as f64).powi(2);
                }
                acc += pixel_term;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            (acc / count as f64) as f32
        }
    }

    /// HVSQ per quality region, given region boundaries in degrees. The
    /// last region extends to infinity.
    pub fn evaluate_regions(
        &self,
        reference: &Image,
        altered: &Image,
        boundaries_deg: &[f32],
    ) -> Vec<f32> {
        let mut out = Vec::with_capacity(boundaries_deg.len());
        for (i, &lo) in boundaries_deg.iter().enumerate() {
            let hi = boundaries_deg.get(i + 1).copied().unwrap_or(f32::INFINITY);
            out.push(self.evaluate(reference, altered, Some((lo, hi))));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisplayGeometry;
    use ms_math::Vec3;
    use rand::{Rng, SeedableRng};

    fn display() -> DisplayGeometry {
        DisplayGeometry::new(160, 120, 88.0)
    }

    fn textured(seed: u64) -> Image {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut img = Image::new(160, 120);
        for y in 0..120 {
            for x in 0..160 {
                let v = 0.5
                    + 0.25 * ((x as f32 * 0.4).sin() + (y as f32 * 0.3).cos())
                    + rng.gen_range(-0.05..0.05f32);
                img.set_pixel(x, y, Vec3::splat(v.clamp(0.0, 1.0)));
            }
        }
        img
    }

    /// Add uniform noise inside a pixel-space disk around `center`.
    fn perturb_disk(img: &Image, center: (u32, u32), radius: f32, seed: u64) -> Image {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut out = img.clone();
        for y in 0..img.height() {
            for x in 0..img.width() {
                let dx = x as f32 - center.0 as f32;
                let dy = y as f32 - center.1 as f32;
                if (dx * dx + dy * dy).sqrt() < radius {
                    let p = img.pixel(x, y);
                    let n: f32 = rng.gen_range(-0.3..0.3);
                    out.set_pixel(
                        x,
                        y,
                        (p + Vec3::splat(n)).max(Vec3::zero()).min(Vec3::one()),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn identical_images_score_zero() {
        let img = textured(1);
        let h = Hvsq::new(display());
        assert_eq!(h.evaluate(&img, &img, None), 0.0);
    }

    #[test]
    fn pool_diameter_grows_quadratically() {
        let o = HvsqOptions::default();
        let d0 = o.pool_diameter_deg(0.0);
        let d10 = o.pool_diameter_deg(10.0);
        let d20 = o.pool_diameter_deg(20.0);
        assert!(d10 > d0);
        // Quadratic term: increments grow.
        assert!(d20 - d10 > d10 - d0);
        // Cap applies.
        assert_eq!(o.pool_diameter_deg(1000.0), o.max_pool_deg);
    }

    #[test]
    fn foveal_perturbation_scores_worse_than_peripheral() {
        // The same disturbance is more visible (higher HVSQ) under the gaze
        // than in the periphery — the core property the metric must have.
        let reference = textured(2);
        let h = Hvsq::new(display());
        let foveal = perturb_disk(&reference, (80, 60), 12.0, 3);
        let peripheral = perturb_disk(&reference, (10, 10), 12.0, 3);
        let q_fov = h.evaluate(&reference, &foveal, None);
        let q_per = h.evaluate(&reference, &peripheral, None);
        assert!(
            q_fov > q_per * 1.5,
            "foveal {q_fov} should exceed peripheral {q_per}"
        );
    }

    #[test]
    fn stronger_perturbation_scores_worse() {
        let reference = textured(4);
        let h = Hvsq::new(display());
        let mild = perturb_disk(&reference, (80, 60), 8.0, 5);
        let strong = perturb_disk(&reference, (80, 60), 25.0, 5);
        assert!(h.evaluate(&reference, &strong, None) > h.evaluate(&reference, &mild, None));
    }

    #[test]
    fn band_restriction_isolates_regions() {
        let reference = textured(6);
        let h = Hvsq::new(display());
        // Perturb only the periphery.
        let altered = perturb_disk(&reference, (5, 5), 15.0, 7);
        let foveal_band = h.evaluate(&reference, &altered, Some((0.0, 10.0)));
        let periph_band = h.evaluate(&reference, &altered, Some((25.0, f32::INFINITY)));
        assert!(
            periph_band > foveal_band * 2.0,
            "{periph_band} vs {foveal_band}"
        );
    }

    #[test]
    fn evaluate_regions_covers_all_levels() {
        let reference = textured(8);
        let altered = perturb_disk(&reference, (80, 60), 30.0, 9);
        let h = Hvsq::new(display());
        let per_region = h.evaluate_regions(&reference, &altered, &[0.0, 18.0, 27.0, 33.0]);
        assert_eq!(per_region.len(), 4);
        assert!(per_region[0] > 0.0);
    }

    #[test]
    fn empty_band_scores_zero() {
        let img = textured(10);
        let h = Hvsq::new(display());
        assert_eq!(h.evaluate(&img, &img, Some((500.0, 600.0))), 0.0);
    }

    #[test]
    fn stride_approximates_full_evaluation() {
        let reference = textured(11);
        let altered = perturb_disk(&reference, (80, 60), 30.0, 12);
        let full = Hvsq::new(display()).evaluate(&reference, &altered, None);
        let strided = Hvsq::with_options(
            EccentricityMap::centered(display()),
            HvsqOptions {
                stride: 3,
                ..HvsqOptions::default()
            },
        )
        .evaluate(&reference, &altered, None);
        assert!(
            (full - strided).abs() / full < 0.25,
            "full {full} vs strided {strided}"
        );
    }
}
