//! Fine-tuning: Adam over opacity/SH-DC (image loss) and scales (WS loss).
//!
//! Implements the "Re-training with scale decay" box of Fig. 6 using the
//! composite loss of Eqn. 6, `L = L_quality + γ·WS`. Opacities are
//! parameterized through a sigmoid (logit space) as in 3DGS so they stay in
//! `(0, 1)`; scales are updated in log space so they stay positive.

use crate::ce::compute_tile_usage;
use crate::grad::backward_mse;
use crate::scale_decay::{weighted_scale, weighted_scale_grad, ScaleDecayOptions};
use ms_math::{inverse_sigmoid, sigmoid};
use ms_render::{Image, RenderOptions};
use ms_scene::{Camera, GaussianModel};
use serde::{Deserialize, Serialize};

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Number of optimization steps (one camera per step, round-robin).
    pub iterations: usize,
    /// Adam learning rate for opacity logits (3DGS uses 0.05).
    pub lr_opacity: f32,
    /// Adam learning rate for SH-DC coefficients (3DGS uses 0.0025 ×
    /// feature scaling; ours is applied directly).
    pub lr_dc: f32,
    /// Adam learning rate for log-scales (driven by the WS gradient only).
    pub lr_scale: f32,
    /// Scale-decay options (`None` disables scale decay, as in the FR
    /// level-training where scales are shared and frozen, §4.3).
    pub scale_decay: Option<ScaleDecayOptions>,
    /// Render options for forward/backward passes.
    pub render: RenderOptions,
    /// Recompute per-point tile usage every this many iterations (usage
    /// drifts as scales shrink).
    pub usage_refresh_interval: usize,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            lr_opacity: 0.05,
            lr_dc: 0.01,
            lr_scale: 0.02,
            scale_decay: Some(ScaleDecayOptions::default()),
            render: RenderOptions::default(),
            usage_refresh_interval: 10,
        }
    }
}

/// Summary of a fine-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineTuneReport {
    /// MSE after each iteration (against that iteration's reference view).
    pub mse_history: Vec<f32>,
    /// Weighted-Scale after each usage refresh.
    pub ws_history: Vec<f32>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Adam state for one parameter vector.
#[derive(Debug, Clone, Default)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
}

impl AdamState {
    fn new(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// One Adam step over `params` given `grads`; standard β₁/β₂/ε.
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t);
        let bc2 = 1.0 - B2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            params[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// The fine-tuner (owns optimizer state across iterations).
#[derive(Debug)]
pub struct FineTuner {
    config: FineTuneConfig,
    opacity_adam: AdamState,
    dc_adam: AdamState,
    scale_adam: AdamState,
}

impl FineTuner {
    /// Create a fine-tuner for a model of `point_count` points.
    pub fn new(config: FineTuneConfig, point_count: usize) -> Self {
        Self {
            opacity_adam: AdamState::new(point_count),
            dc_adam: AdamState::new(point_count * 3),
            scale_adam: AdamState::new(point_count * 3),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FineTuneConfig {
        &self.config
    }

    /// Fine-tune `model` against per-camera `references`.
    ///
    /// # Panics
    ///
    /// Panics when `cameras` and `references` lengths differ or are empty,
    /// or when the tuner was constructed for a different point count.
    pub fn run(
        &mut self,
        model: &mut GaussianModel,
        cameras: &[Camera],
        references: &[Image],
    ) -> FineTuneReport {
        assert_eq!(cameras.len(), references.len(), "camera/reference mismatch");
        assert!(!cameras.is_empty(), "need at least one training view");
        assert_eq!(
            self.opacity_adam.m.len(),
            model.len(),
            "tuner sized for different model"
        );

        let mut logits: Vec<f32> = model
            .opacities
            .iter()
            .map(|&o| inverse_sigmoid(o))
            .collect();
        let mut mse_history = Vec::with_capacity(self.config.iterations);
        let mut ws_history = Vec::new();
        let mut usage: Option<Vec<f32>> = None;

        for it in 0..self.config.iterations {
            // Refresh tile-usage statistics for scale decay.
            if self.config.scale_decay.is_some()
                && (it % self.config.usage_refresh_interval.max(1) == 0 || usage.is_none())
            {
                let u = compute_tile_usage(model, cameras, &self.config.render);
                if let Some(sd) = &self.config.scale_decay {
                    ws_history.push(weighted_scale(model, &u, sd));
                }
                usage = Some(u);
            }

            let cam_idx = it % cameras.len();
            let (_, mse, grads) = backward_mse(
                model,
                &cameras[cam_idx],
                &references[cam_idx],
                &self.config.render,
            );
            mse_history.push(mse);

            // Opacity step in logit space: ∂L/∂logit = ∂L/∂p · p(1−p).
            let logit_grads: Vec<f32> = grads
                .d_opacity
                .iter()
                .zip(&model.opacities)
                .map(|(&g, &p)| g * p * (1.0 - p))
                .collect();
            self.opacity_adam
                .step(&mut logits, &logit_grads, self.config.lr_opacity);
            for (o, &l) in model.opacities.iter_mut().zip(&logits) {
                *o = sigmoid(l);
            }

            // SH-DC step.
            let mut dc_params = vec![0.0f32; model.len() * 3];
            let stride = model.sh_stride();
            for i in 0..model.len() {
                dc_params[i * 3..i * 3 + 3]
                    .copy_from_slice(&model.sh_coeffs[i * stride..i * stride + 3]);
            }
            let dc_grads: Vec<f32> = grads.d_dc.iter().flat_map(|g| g.iter().copied()).collect();
            self.dc_adam
                .step(&mut dc_params, &dc_grads, self.config.lr_dc);
            for i in 0..model.len() {
                model.sh_coeffs[i * stride..i * stride + 3]
                    .copy_from_slice(&dc_params[i * 3..i * 3 + 3]);
            }

            // Scale step from the WS regularizer (log-space).
            if let (Some(sd), Some(u)) = (&self.config.scale_decay, &usage) {
                let ws_grads = weighted_scale_grad(model, u, sd);
                let mut log_scales = vec![0.0f32; model.len() * 3];
                let mut grads_flat = vec![0.0f32; model.len() * 3];
                for i in 0..model.len() {
                    for a in 0..3 {
                        log_scales[i * 3 + a] = model.scales[i][a].ln();
                    }
                    let (axis, g) = ws_grads[i];
                    // d/d(log s) = g · s.
                    grads_flat[i * 3 + axis] = g * model.scales[i][axis];
                }
                self.scale_adam
                    .step(&mut log_scales, &grads_flat, self.config.lr_scale);
                for i in 0..model.len() {
                    for a in 0..3 {
                        model.scales[i][a] = log_scales[i * 3 + a].exp().clamp(1e-6, 1e4);
                    }
                }
            }
        }

        FineTuneReport {
            mse_history,
            ws_history,
            iterations: self.config.iterations,
        }
    }
}

/// Convenience wrapper: construct a tuner and run it once.
pub fn fine_tune(
    model: &mut GaussianModel,
    cameras: &[Camera],
    references: &[Image],
    config: FineTuneConfig,
) -> FineTuneReport {
    FineTuner::new(config, model.len()).run(model, cameras, references)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};
    use ms_render::Renderer;

    fn cam() -> Camera {
        Camera::look_at(48, 48, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero())
    }

    fn scene_model() -> GaussianModel {
        let mut m = GaussianModel::new(0);
        m.push_solid(
            Vec3::new(-0.3, 0.0, 0.0),
            Vec3::splat(0.3),
            Quat::identity(),
            0.6,
            Vec3::new(0.9, 0.2, 0.2),
        );
        m.push_solid(
            Vec3::new(0.4, 0.1, 0.2),
            Vec3::splat(0.35),
            Quat::identity(),
            0.5,
            Vec3::new(0.2, 0.9, 0.3),
        );
        m.push_solid(
            Vec3::new(0.0, -0.3, -0.3),
            Vec3::splat(0.25),
            Quat::identity(),
            0.7,
            Vec3::new(0.3, 0.3, 0.9),
        );
        m
    }

    #[test]
    fn finetune_recovers_perturbed_opacities() {
        let target = scene_model();
        let camera = cam();
        let reference = Renderer::default().render(&target, &camera).image;

        let mut perturbed = target.clone();
        perturbed.opacities = vec![0.3, 0.9, 0.4];
        let mse_before = Renderer::default()
            .render(&perturbed, &camera)
            .image
            .mse(&reference);

        let config = FineTuneConfig {
            iterations: 60,
            scale_decay: None,
            ..FineTuneConfig::default()
        };
        let report = fine_tune(
            &mut perturbed,
            &[camera],
            std::slice::from_ref(&reference),
            config,
        );
        let mse_after = Renderer::default()
            .render(&perturbed, &camera)
            .image
            .mse(&reference);
        assert!(
            mse_after < mse_before * 0.3,
            "fine-tuning should recover quality: {mse_before} → {mse_after}"
        );
        assert_eq!(report.iterations, 60);
        assert_eq!(report.mse_history.len(), 60);
    }

    #[test]
    fn finetune_recovers_perturbed_colors() {
        let target = scene_model();
        let camera = cam();
        let reference = Renderer::default().render(&target, &camera).image;
        let mut perturbed = target.clone();
        for i in 0..perturbed.len() {
            perturbed.sh_mut(i)[0] += 0.5; // red shift
        }
        let mse_before = Renderer::default()
            .render(&perturbed, &camera)
            .image
            .mse(&reference);
        let config = FineTuneConfig {
            iterations: 80,
            scale_decay: None,
            lr_dc: 0.05,
            ..FineTuneConfig::default()
        };
        fine_tune(
            &mut perturbed,
            &[camera],
            std::slice::from_ref(&reference),
            config,
        );
        let mse_after = Renderer::default()
            .render(&perturbed, &camera)
            .image
            .mse(&reference);
        assert!(mse_after < mse_before * 0.3, "{mse_before} → {mse_after}");
    }

    #[test]
    fn scale_decay_shrinks_heavy_points() {
        let mut m = scene_model();
        // Make one point enormous so it intersects many tiles.
        m.scales[0] = Vec3::splat(1.5);
        let camera = cam();
        let reference = Renderer::default().render(&m, &camera).image;
        let extent_before = m.point_extent(0);
        let config = FineTuneConfig {
            iterations: 30,
            scale_decay: Some(ScaleDecayOptions {
                usage_threshold: 2.0,
                gamma: 0.5,
            }),
            lr_scale: 0.05,
            ..FineTuneConfig::default()
        };
        fine_tune(&mut m, &[camera], &[reference], config);
        let extent_after = m.point_extent(0);
        assert!(
            extent_after < extent_before,
            "scale decay should shrink the heavy splat: {extent_before} → {extent_after}"
        );
    }

    #[test]
    fn opacities_stay_in_unit_interval() {
        let mut m = scene_model();
        let camera = cam();
        let reference = Image::filled(48, 48, Vec3::one()); // force big gradients
        let config = FineTuneConfig {
            iterations: 40,
            lr_opacity: 0.5,
            scale_decay: None,
            ..FineTuneConfig::default()
        };
        fine_tune(&mut m, &[camera], &[reference], config);
        for &o in &m.opacities {
            assert!((0.0..=1.0).contains(&o), "opacity {o} escaped (0,1)");
        }
        m.validate().unwrap();
    }

    #[test]
    #[should_panic]
    fn mismatched_references_panic() {
        let mut m = scene_model();
        let config = FineTuneConfig::default();
        let _ = fine_tune(&mut m, &[cam()], &[], config);
    }
}
