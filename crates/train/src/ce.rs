//! Computational Efficiency (CE) — the pruning metric of Eqn. 3.
//!
//! `CEᵢ = Valᵢ / Compᵢ`: the contribution a point makes to pixel values per
//! unit of compute. `Valᵢ` is the number of pixels *dominated* by point `i`
//! (it has the largest `Tᵢαᵢ` in their compositing sums); `Compᵢ` is the
//! number of tile-ellipse intersections the point generates. Both are
//! per-frame quantities; the paper aggregates CE by taking the **maximum
//! over training poses** ("as opposed to the average, which is susceptible
//! to dataset bias").

use ms_render::{RenderOptions, Renderer};
use ms_scene::{Camera, GaussianModel};
use serde::{Deserialize, Serialize};

/// How per-pose CE values are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CeAggregation {
    /// Paper's choice: maximum CE across poses.
    #[default]
    Max,
    /// Ablation alternative: mean CE across poses where the point is used.
    Mean,
}

/// Options for CE computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CeOptions {
    /// Pose aggregation mode.
    pub aggregation: CeAggregation,
    /// Render options for the statistics passes (`track_point_stats` is
    /// forced on).
    pub render: RenderOptions,
}

impl Default for CeOptions {
    fn default() -> Self {
        Self {
            aggregation: CeAggregation::Max,
            render: RenderOptions::default(),
        }
    }
}

/// Per-point CE over a set of training poses.
///
/// Points that are never used by any pose (outside every frustum, or fully
/// culled) receive CE = 0 and are therefore pruned first.
///
/// # Panics
///
/// Panics when `cameras` is empty.
pub fn compute_ce(model: &GaussianModel, cameras: &[Camera], options: &CeOptions) -> Vec<f32> {
    assert!(!cameras.is_empty(), "CE needs at least one pose");
    let mut render_opts = options.render.clone();
    render_opts.track_point_stats = true;
    let renderer = Renderer::new(render_opts);

    let n = model.len();
    let mut agg = vec![0.0f32; n];
    let mut used_poses = vec![0u32; n];
    for cam in cameras {
        let out = renderer.render(model, cam);
        let tiles = &out.stats.point_tiles_used;
        let dom = &out.stats.point_pixels_dominated;
        for i in 0..n {
            if tiles[i] == 0 {
                continue;
            }
            let ce = dom[i] as f32 / tiles[i] as f32;
            match options.aggregation {
                CeAggregation::Max => agg[i] = agg[i].max(ce),
                CeAggregation::Mean => agg[i] += ce,
            }
            used_poses[i] += 1;
        }
    }
    if options.aggregation == CeAggregation::Mean {
        for i in 0..n {
            if used_poses[i] > 0 {
                agg[i] /= used_poses[i] as f32;
            }
        }
    }
    agg
}

/// Per-point `Uᵢ` — the number of tiles a point is used in — averaged over
/// poses. This is the usage term of the Weighted-Scale metric (Eqn. 5).
///
/// # Panics
///
/// Panics when `cameras` is empty.
pub fn compute_tile_usage(
    model: &GaussianModel,
    cameras: &[Camera],
    render: &RenderOptions,
) -> Vec<f32> {
    assert!(!cameras.is_empty(), "usage needs at least one pose");
    let mut render_opts = render.clone();
    render_opts.track_point_stats = true;
    let renderer = Renderer::new(render_opts);
    let n = model.len();
    let mut acc = vec![0.0f32; n];
    for cam in cameras {
        let out = renderer.render(model, cam);
        for (a, &t) in acc.iter_mut().zip(&out.stats.point_tiles_used) {
            *a += t as f32;
        }
    }
    for a in &mut acc {
        *a /= cameras.len() as f32;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};

    fn cam() -> Camera {
        Camera::look_at(96, 96, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero())
    }

    /// A visible solid point, a huge dim floater, and an opaque backdrop.
    /// Over real content (the backdrop) the floater dominates almost no
    /// pixels while intersecting many tiles — the low-CE case.
    fn floater_scene() -> GaussianModel {
        let mut m = GaussianModel::new(0);
        m.push_solid(
            Vec3::zero(),
            Vec3::splat(0.15),
            Quat::identity(),
            0.95,
            Vec3::new(1.0, 0.2, 0.2),
        );
        m.push_solid(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::splat(1.2),
            Quat::identity(),
            0.05,
            Vec3::splat(0.5),
        );
        m.push_solid(
            Vec3::new(0.0, 0.0, -2.0),
            Vec3::splat(3.0),
            Quat::identity(),
            0.97,
            Vec3::new(0.3, 0.5, 0.3),
        );
        m
    }

    #[test]
    fn floater_has_lower_ce() {
        let m = floater_scene();
        let ce = compute_ce(&m, &[cam()], &CeOptions::default());
        assert!(
            ce[0] > ce[1] * 3.0,
            "solid point CE {} should dwarf floater CE {}",
            ce[0],
            ce[1]
        );
    }

    #[test]
    fn invisible_point_has_zero_ce() {
        let mut m = floater_scene();
        m.push_solid(
            Vec3::new(0.0, 0.0, 100.0),
            Vec3::splat(0.2),
            Quat::identity(),
            0.9,
            Vec3::one(),
        );
        let ce = compute_ce(&m, &[cam()], &CeOptions::default());
        assert_eq!(ce[3], 0.0);
    }

    #[test]
    fn max_aggregation_dominates_mean() {
        // With two poses where a point is visible in only one, max ≥ mean.
        let m = floater_scene();
        let cams = [
            cam(),
            Camera::look_at(96, 96, 60.0, Vec3::new(4.0, 0.0, 0.0), Vec3::zero()),
        ];
        let max_ce = compute_ce(
            &m,
            &cams,
            &CeOptions {
                aggregation: CeAggregation::Max,
                ..CeOptions::default()
            },
        );
        let mean_ce = compute_ce(
            &m,
            &cams,
            &CeOptions {
                aggregation: CeAggregation::Mean,
                ..CeOptions::default()
            },
        );
        for i in 0..m.len() {
            assert!(
                max_ce[i] >= mean_ce[i] - 1e-5,
                "point {i}: max {} < mean {}",
                max_ce[i],
                mean_ce[i]
            );
        }
    }

    #[test]
    fn occluded_point_has_zero_val_but_positive_comp() {
        let mut m = GaussianModel::new(0);
        m.push_solid(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::splat(0.5),
            Quat::identity(),
            0.99,
            Vec3::one(),
        );
        // Hidden behind the first.
        m.push_solid(
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::splat(0.1),
            Quat::identity(),
            0.9,
            Vec3::one(),
        );
        let ce = compute_ce(&m, &[cam()], &CeOptions::default());
        assert!(ce[0] > 0.0);
        assert_eq!(ce[1], 0.0, "occluded point dominates nothing → CE 0");
    }

    #[test]
    fn tile_usage_scales_with_splat_size() {
        let m = floater_scene();
        let usage = compute_tile_usage(&m, &[cam()], &RenderOptions::default());
        assert!(usage[1] > usage[0], "floater uses more tiles: {usage:?}");
    }

    #[test]
    #[should_panic]
    fn empty_cameras_panic() {
        let m = floater_scene();
        let _ = compute_ce(&m, &[], &CeOptions::default());
    }
}
