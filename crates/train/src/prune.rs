//! Pruning primitives.

use ms_scene::GaussianModel;

/// Remove the `count` points with the lowest scores. Returns the pruned
/// model and the kept indices (into the input model).
///
/// Ties are broken by index for determinism.
///
/// # Panics
///
/// Panics when `scores.len() != model.len()`.
pub fn prune_lowest(
    model: &GaussianModel,
    scores: &[f32],
    count: usize,
) -> (GaussianModel, Vec<usize>) {
    assert_eq!(scores.len(), model.len(), "score length mismatch");
    let count = count.min(model.len());
    let mut order: Vec<usize> = (0..model.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order[count..].to_vec();
    kept.sort_unstable();
    (model.subset(&kept), kept)
}

/// Remove a fraction `rate ∈ [0, 1]` of the lowest-scoring points
/// (the paper prunes `R = 10%` per outer iteration).
///
/// # Panics
///
/// Panics when `rate` is outside `[0, 1]` or on score length mismatch.
pub fn prune_fraction(
    model: &GaussianModel,
    scores: &[f32],
    rate: f32,
) -> (GaussianModel, Vec<usize>) {
    assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
    let count = (model.len() as f32 * rate).round() as usize;
    prune_lowest(model, scores, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};
    use proptest::prelude::*;

    fn model_of(n: usize) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        for i in 0..n {
            m.push_solid(
                Vec3::new(i as f32, 0.0, 0.0),
                Vec3::splat(0.1),
                Quat::identity(),
                0.5,
                Vec3::one(),
            );
        }
        m
    }

    #[test]
    fn prunes_lowest_scores() {
        let m = model_of(5);
        let scores = [3.0, 0.5, 2.0, 0.1, 9.0];
        let (pruned, kept) = prune_lowest(&m, &scores, 2);
        assert_eq!(kept, vec![0, 2, 4]);
        assert_eq!(pruned.len(), 3);
        assert_eq!(pruned.positions[0].x, 0.0);
        assert_eq!(pruned.positions[2].x, 4.0);
    }

    #[test]
    fn prune_count_clamped() {
        let m = model_of(3);
        let (pruned, kept) = prune_lowest(&m, &[1.0, 2.0, 3.0], 10);
        assert_eq!(pruned.len(), 0);
        assert!(kept.is_empty());
    }

    #[test]
    fn prune_zero_is_identity() {
        let m = model_of(4);
        let (pruned, kept) = prune_fraction(&m, &[1.0, 2.0, 3.0, 4.0], 0.0);
        assert_eq!(pruned, m);
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ties_break_by_index() {
        let m = model_of(4);
        let (_, kept) = prune_lowest(&m, &[1.0, 1.0, 1.0, 1.0], 2);
        // Lowest indices pruned first on ties.
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    #[should_panic]
    fn score_length_mismatch_panics() {
        let m = model_of(3);
        let _ = prune_lowest(&m, &[1.0], 1);
    }

    proptest! {
        #[test]
        fn kept_scores_dominate_pruned(
            scores in proptest::collection::vec(0.0f32..10.0, 2..40),
            rate in 0.0f32..1.0,
        ) {
            let m = model_of(scores.len());
            let (_, kept) = prune_fraction(&m, &scores, rate);
            let kept_set: std::collections::HashSet<usize> = kept.iter().copied().collect();
            let max_pruned = (0..scores.len())
                .filter(|i| !kept_set.contains(i))
                .map(|i| scores[i])
                .fold(f32::NEG_INFINITY, f32::max);
            let min_kept = kept.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
            prop_assert!(kept.is_empty() || max_pruned <= min_kept + 1e-6);
        }

        #[test]
        fn prune_fraction_count(n in 1usize..50, rate in 0.0f32..1.0) {
            let m = model_of(n);
            let scores: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let (pruned, _) = prune_fraction(&m, &scores, rate);
            let expected_removed = (n as f32 * rate).round() as usize;
            prop_assert_eq!(pruned.len(), n - expected_removed.min(n));
        }
    }
}
