//! The iterative prune → retrain procedure of Fig. 6.
//!
//! Given a dense model, repeatedly: compute CE, prune the lowest-CE `R`% of
//! points, and whenever the quality loss `L_quality` crosses a prescribed
//! threshold, re-train with the composite loss `L = L_quality + γ·WS`
//! (Eqn. 6) until quality recovers. The loop "does not require
//! quality-specific hyper-parameter tuning": controlling for `L_quality`
//! automatically yields a model at a given quality.

use crate::ce::{compute_ce, CeOptions};
use crate::finetune::{FineTuneConfig, FineTuner};
use crate::prune::prune_fraction;
use ms_hvs::{DisplayGeometry, Hvsq, HvsqOptions};
use ms_render::{Image, RenderOptions, Renderer};
use ms_scene::{Camera, GaussianModel};
use serde::{Deserialize, Serialize};

/// The quality loss `L_quality` monitored by the loop.
///
/// "Note that L_quality is usually PSNR or SSIM but can be any other quality
/// metric of interest" (§3.4); the FR training of §4.3 swaps in HVSQ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QualityMetric {
    /// PSNR drop in dB relative to the dense reference renders.
    PsnrDrop,
    /// Raw MSE against the reference renders.
    Mse,
    /// Eccentricity-aware HVSQ (mean over evaluation views), optionally
    /// restricted to an eccentricity band (degrees).
    Hvsq {
        /// Pooling options.
        options: HvsqOptions,
        /// Optional eccentricity band `[lo, hi)` in degrees.
        band: Option<(f32, f32)>,
    },
}

impl QualityMetric {
    /// Evaluate the quality loss of `model` against per-camera reference
    /// images (larger = worse).
    pub fn evaluate(
        &self,
        model: &GaussianModel,
        cameras: &[Camera],
        references: &[Image],
        render: &RenderOptions,
    ) -> f32 {
        assert_eq!(cameras.len(), references.len());
        assert!(!cameras.is_empty());
        let renderer = Renderer::new(render.clone());
        let mut acc = 0.0f64;
        for (cam, reference) in cameras.iter().zip(references) {
            let out = renderer.render(model, cam);
            let loss = match self {
                QualityMetric::Mse => out.image.mse(reference),
                QualityMetric::PsnrDrop => {
                    let mse = out.image.mse(reference);
                    // Drop relative to an ideal render of the reference by
                    // itself (infinite PSNR): use the absolute PSNR deficit
                    // from a high-quality anchor of 50 dB.
                    let psnr = if mse <= 0.0 {
                        50.0
                    } else {
                        (-10.0 * mse.log10()).min(50.0)
                    };
                    (50.0 - psnr).max(0.0)
                }
                QualityMetric::Hvsq { options, band } => {
                    let display = DisplayGeometry::new(
                        cam.width,
                        cam.height,
                        ms_math::rad_to_deg(cam.fovx()),
                    );
                    let hvsq =
                        Hvsq::with_options(ms_hvs::EccentricityMap::centered(display), *options);
                    hvsq.evaluate(reference, &out.image, *band)
                }
            };
            acc += loss as f64;
        }
        (acc / cameras.len() as f64) as f32
    }
}

/// Configuration of the Fig. 6 loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficientPruningConfig {
    /// Fraction pruned per outer iteration (`R`; paper uses 10%).
    pub prune_rate: f32,
    /// Quality-loss threshold that triggers retraining / stops pruning.
    pub quality_threshold: f32,
    /// Maximum number of prune steps.
    pub max_iterations: usize,
    /// Maximum retrain rounds per quality breach.
    pub max_retrain_rounds: usize,
    /// Fine-tuning configuration for each retrain round.
    pub retrain: FineTuneConfig,
    /// CE computation options.
    pub ce: CeOptions,
    /// Quality metric monitored as `L_quality`.
    pub metric: QualityMetric,
}

impl Default for EfficientPruningConfig {
    fn default() -> Self {
        Self {
            prune_rate: 0.10,
            quality_threshold: 1e-3,
            max_iterations: 8,
            max_retrain_rounds: 2,
            retrain: FineTuneConfig::default(),
            ce: CeOptions::default(),
            metric: QualityMetric::Mse,
        }
    }
}

/// One outer-loop record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Points remaining after this iteration.
    pub points: usize,
    /// Quality loss after this iteration (post-retrain if any).
    pub quality_loss: f32,
    /// Whether retraining ran this iteration.
    pub retrained: bool,
}

/// Result of the pruning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningOutcome {
    /// The pruned (and re-trained) model.
    pub model: GaussianModel,
    /// Per-iteration history.
    pub history: Vec<IterationRecord>,
    /// Quality loss of the final model.
    pub final_quality_loss: f32,
}

/// Run the iterative prune → retrain loop of Fig. 6.
///
/// `references` are ground-truth renders of the *dense* model from
/// `cameras` (the quality anchor).
///
/// # Panics
///
/// Panics when camera/reference lengths mismatch or are empty.
pub fn prune_efficiently(
    dense: &GaussianModel,
    cameras: &[Camera],
    references: &[Image],
    config: &EfficientPruningConfig,
) -> PruningOutcome {
    assert_eq!(cameras.len(), references.len());
    assert!(!cameras.is_empty());
    let mut model = dense.clone();
    let mut history = Vec::new();

    for _ in 0..config.max_iterations {
        if model.len() < 8 {
            break; // nothing meaningful left to prune
        }
        // Prune R% of the lowest-CE points.
        let ce = compute_ce(&model, cameras, &config.ce);
        let (pruned, _) = prune_fraction(&model, &ce, config.prune_rate);
        model = pruned;

        // Check quality; retrain while the threshold is breached.
        let mut quality = config
            .metric
            .evaluate(&model, cameras, references, &config.ce.render);
        let mut retrained = false;
        let mut rounds = 0;
        while quality > config.quality_threshold && rounds < config.max_retrain_rounds {
            let mut tuner = FineTuner::new(config.retrain.clone(), model.len());
            tuner.run(&mut model, cameras, references);
            quality = config
                .metric
                .evaluate(&model, cameras, references, &config.ce.render);
            retrained = true;
            rounds += 1;
        }
        history.push(IterationRecord {
            points: model.len(),
            quality_loss: quality,
            retrained,
        });
    }

    let final_quality_loss = config
        .metric
        .evaluate(&model, cameras, references, &config.ce.render);
    PruningOutcome {
        model,
        history,
        final_quality_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_scene::dataset::TraceId;
    use ms_scene::Camera;

    /// Small scene + shrunken cameras so the loop runs quickly.
    fn setup() -> (GaussianModel, Vec<Camera>, Vec<Image>) {
        let scene = TraceId::by_name("bonsai")
            .unwrap()
            .build_scene_with_scale(0.004);
        let cameras: Vec<Camera> = scene
            .train_cameras
            .iter()
            .step_by(8)
            .take(3)
            .map(|c| Camera {
                width: 80,
                height: 60,
                ..*c
            })
            .collect();
        let renderer = Renderer::default();
        let references: Vec<Image> = cameras
            .iter()
            .map(|c| renderer.render(&scene.model, c).image)
            .collect();
        (scene.model, cameras, references)
    }

    #[test]
    fn pruning_reduces_points_and_intersections() {
        let (dense, cameras, references) = setup();
        let config = EfficientPruningConfig {
            max_iterations: 3,
            quality_threshold: 1e9, // never retrain in this test
            ..EfficientPruningConfig::default()
        };
        let outcome = prune_efficiently(&dense, &cameras, &references, &config);
        assert!(outcome.model.len() < dense.len());
        // Intersections should drop with the pruned points.
        let renderer = Renderer::default();
        let before = renderer
            .render(&dense, &cameras[0])
            .stats
            .total_intersections;
        let after = renderer
            .render(&outcome.model, &cameras[0])
            .stats
            .total_intersections;
        assert!(after < before, "intersections {before} → {after}");
        assert_eq!(outcome.history.len(), 3);
    }

    #[test]
    fn pruning_preserves_quality_better_than_random() {
        let (dense, cameras, references) = setup();
        let config = EfficientPruningConfig {
            max_iterations: 4,
            quality_threshold: 1e9,
            ..EfficientPruningConfig::default()
        };
        let outcome = prune_efficiently(&dense, &cameras, &references, &config);

        // Random pruning to the same point count.
        let target = outcome.model.len();
        let keep: Vec<usize> = (0..dense.len())
            .step_by(dense.len().div_ceil(target))
            .collect();
        let random = dense.subset(&keep[..target.min(keep.len())]);

        let m = QualityMetric::Mse;
        let q_ce = m.evaluate(
            &outcome.model,
            &cameras,
            &references,
            &RenderOptions::default(),
        );
        let q_rand = m.evaluate(&random, &cameras, &references, &RenderOptions::default());
        assert!(
            q_ce < q_rand,
            "CE pruning (mse {q_ce}) should beat count-matched arbitrary pruning (mse {q_rand})"
        );
    }

    #[test]
    fn retraining_triggers_when_quality_breached() {
        let (dense, cameras, references) = setup();
        let config = EfficientPruningConfig {
            max_iterations: 2,
            quality_threshold: 1e-7, // impossible: always retrain
            max_retrain_rounds: 1,
            retrain: FineTuneConfig {
                iterations: 3,
                ..FineTuneConfig::default()
            },
            ..EfficientPruningConfig::default()
        };
        let outcome = prune_efficiently(&dense, &cameras, &references, &config);
        assert!(outcome.history.iter().any(|r| r.retrained));
    }

    #[test]
    fn psnr_drop_metric_monotone_in_damage() {
        let (dense, cameras, references) = setup();
        let metric = QualityMetric::PsnrDrop;
        let q_dense = metric.evaluate(&dense, &cameras, &references, &RenderOptions::default());
        // Heavily damaged model: drop half the points arbitrarily.
        let keep: Vec<usize> = (0..dense.len()).filter(|i| i % 2 == 0).collect();
        let damaged = dense.subset(&keep);
        let q_damaged = metric.evaluate(&damaged, &cameras, &references, &RenderOptions::default());
        assert!(q_damaged > q_dense);
    }

    #[test]
    fn hvsq_metric_evaluates() {
        let (dense, cameras, references) = setup();
        let metric = QualityMetric::Hvsq {
            options: HvsqOptions {
                stride: 4,
                ..HvsqOptions::default()
            },
            band: None,
        };
        let q = metric.evaluate(&dense, &cameras, &references, &RenderOptions::default());
        assert!(
            q.abs() < 1e-9,
            "dense model against its own renders ≈ 0, got {q}"
        );
    }
}
