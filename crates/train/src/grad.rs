//! Analytic backward pass through the volume-rendering equation.
//!
//! The retraining step of Fig. 6 needs gradients of an image loss with
//! respect to the per-point parameters that training tunes: **opacity** and
//! the **SH DC color component** (scales get their gradient from the WS
//! regularizer, see [`crate::scale_decay`]). For a pixel composited
//! front-to-back as
//!
//! ```text
//! C = Σᵢ Tᵢ αᵢ cᵢ + T_end·bg,   Tᵢ = Πⱼ<ᵢ (1 − αⱼ)
//! ```
//!
//! the exact derivatives are
//!
//! ```text
//! ∂C/∂cᵢ = Tᵢ αᵢ
//! ∂C/∂αᵢ = Tᵢ cᵢ − Sᵢ/(1 − αᵢ),   Sᵢ = Σⱼ>ᵢ Tⱼ αⱼ cⱼ + T_end·bg
//! ```
//!
//! computed with a back-to-front suffix accumulation, exactly mirroring the
//! forward pass (same culling, same α clamp, same early stop).

use ms_render::{project_model, ProjectedSplat, RenderOptions, TileBins};
use ms_render::{Image, TileGridDims};
use ms_scene::{Camera, GaussianModel};

/// Per-point gradients of a scalar image loss.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageGradients {
    /// ∂L/∂opacity per point.
    pub d_opacity: Vec<f32>,
    /// ∂L/∂SH-DC per point (three channels).
    pub d_dc: Vec<[f32; 3]>,
}

/// Forward render + backward pass of the MSE loss against `reference`.
///
/// Returns the rendered image, the MSE, and the per-point gradients. The
/// forward output is bit-identical to [`ms_render::Renderer`] with the same
/// options (asserted by tests).
///
/// # Panics
///
/// Panics when `reference` dimensions differ from the camera resolution.
pub fn backward_mse(
    model: &GaussianModel,
    camera: &Camera,
    reference: &Image,
    options: &RenderOptions,
) -> (Image, f32, ImageGradients) {
    assert_eq!(
        (reference.width(), reference.height()),
        (camera.width, camera.height),
        "reference dimensions must match the camera"
    );
    let splats = project_model(model, camera, options);
    let grid = TileGridDims::for_image(camera.width, camera.height, options.tile_size);
    let bins = TileBins::build(&splats, grid);

    let mut image = Image::filled(camera.width, camera.height, options.background);
    let mut d_opacity = vec![0.0f32; model.len()];
    let mut d_dc = vec![[0.0f32; 3]; model.len()];
    // dL/dC scale for MSE over all pixels and channels.
    let norm = 2.0 / (camera.width as f32 * camera.height as f32 * 3.0);

    // Contribution record: (splat index, alpha, transmittance-before, capped).
    let mut contribs: Vec<(u32, f32, f32, bool)> = Vec::new();
    let mut mse_acc = 0.0f64;

    for ty in 0..grid.tiles_y {
        for tx in 0..grid.tiles_x {
            let list = bins.tile(tx, ty);
            let x_end = ((tx + 1) * options.tile_size).min(camera.width);
            let y_end = ((ty + 1) * options.tile_size).min(camera.height);
            for y in (ty * options.tile_size)..y_end {
                for x in (tx * options.tile_size)..x_end {
                    let px = ms_math::Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
                    // Forward, recording contributions.
                    contribs.clear();
                    let mut t = 1.0f32;
                    let mut color = ms_math::Vec3::zero();
                    for &si in list {
                        let s = &splats[si as usize];
                        let g = s.conic.gaussian_weight(px - s.center);
                        let raw_alpha = s.opacity * g;
                        let capped = raw_alpha > options.alpha_max;
                        let alpha = raw_alpha.min(options.alpha_max);
                        if alpha < options.alpha_min {
                            continue;
                        }
                        contribs.push((si, alpha, t, capped));
                        color += s.color * (t * alpha);
                        t *= 1.0 - alpha;
                        if t < options.t_min {
                            break;
                        }
                    }
                    color += options.background * t;
                    image.set_pixel(x, y, color);

                    let diff = color - reference.pixel(x, y);
                    mse_acc += (diff.x * diff.x + diff.y * diff.y + diff.z * diff.z) as f64;
                    let dl_dc = diff * norm; // ∂L/∂C (per channel)

                    // Backward: suffix S = Σ_{j>i} T_j α_j c_j + T_end·bg.
                    let mut suffix = options.background * t;
                    for &(si, alpha, t_before, capped) in contribs.iter().rev() {
                        let s = &splats[si as usize];
                        let pi = s.point_index as usize;
                        let w = t_before * alpha;
                        // Color gradient → SH DC. eval_color clamps at zero:
                        // channels sitting exactly at 0 pass no gradient.
                        let dcdc = ms_math::sh::MAX_COEFFS; // silence unused warning paths
                        let _ = dcdc;
                        const SH_C0: f32 = 0.282_094_79;
                        if s.color.x > 0.0 {
                            d_dc[pi][0] += dl_dc.x * w * SH_C0;
                        }
                        if s.color.y > 0.0 {
                            d_dc[pi][1] += dl_dc.y * w * SH_C0;
                        }
                        if s.color.z > 0.0 {
                            d_dc[pi][2] += dl_dc.z * w * SH_C0;
                        }
                        // Alpha gradient (zero when the clamp was active).
                        if !capped {
                            let dc_dalpha = s.color * t_before - suffix / (1.0 - alpha);
                            let g = alpha / s.opacity; // gaussian weight
                            d_opacity[pi] += dl_dc.dot(dc_dalpha) * g;
                        }
                        suffix += s.color * w;
                    }
                }
            }
        }
    }

    let mse = (mse_acc / (camera.width as f64 * camera.height as f64 * 3.0)) as f32;
    (image, mse, ImageGradients { d_opacity, d_dc })
}

/// Forward-only render used for gradient checking (same code path as
/// [`backward_mse`] without the backward bookkeeping).
pub fn forward_image(model: &GaussianModel, camera: &Camera, options: &RenderOptions) -> Image {
    ms_render::Renderer::new(options.clone())
        .render(model, camera)
        .image
}

#[allow(unused_imports)]
use ms_render::Renderer;

/// Helper shared by tests and the fine-tuner: splat count after projection.
pub fn visible_splats(
    model: &GaussianModel,
    camera: &Camera,
    options: &RenderOptions,
) -> Vec<ProjectedSplat> {
    project_model(model, camera, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};

    fn cam() -> Camera {
        Camera::look_at(48, 48, 60.0, Vec3::new(0.0, 0.0, 4.0), Vec3::zero())
    }

    fn two_splat_model() -> GaussianModel {
        let mut m = GaussianModel::new(0);
        m.push_solid(
            Vec3::new(-0.2, 0.0, 0.5),
            Vec3::splat(0.3),
            Quat::identity(),
            0.7,
            Vec3::new(0.9, 0.3, 0.2),
        );
        m.push_solid(
            Vec3::new(0.3, 0.1, -0.5),
            Vec3::splat(0.4),
            Quat::identity(),
            0.5,
            Vec3::new(0.2, 0.8, 0.4),
        );
        m
    }

    fn opts() -> RenderOptions {
        RenderOptions::default()
    }

    #[test]
    fn forward_matches_renderer() {
        let m = two_splat_model();
        let reference = Image::new(48, 48);
        let (img, _, _) = backward_mse(&m, &cam(), &reference, &opts());
        let direct = forward_image(&m, &cam(), &opts());
        assert!(img.mse(&direct) < 1e-12);
    }

    #[test]
    fn zero_loss_zero_gradients() {
        let m = two_splat_model();
        let reference = forward_image(&m, &cam(), &opts());
        let (_, mse, g) = backward_mse(&m, &cam(), &reference, &opts());
        assert!(mse < 1e-12);
        for &d in &g.d_opacity {
            assert!(d.abs() < 1e-6);
        }
    }

    /// Finite-difference check of the opacity gradient.
    #[test]
    fn opacity_gradient_matches_finite_difference() {
        let m = two_splat_model();
        let camera = cam();
        // Reference: a darker version of the scene, so gradients are nonzero.
        let reference = {
            let img = forward_image(&m, &camera, &opts());
            let mut dark = img.clone();
            for p in dark.pixels_mut() {
                *p *= 0.5;
            }
            dark
        };
        let (_, mse0, g) = backward_mse(&m, &camera, &reference, &opts());
        for i in 0..m.len() {
            let eps = 1e-3;
            let mut m2 = m.clone();
            m2.opacities[i] = (m2.opacities[i] + eps).min(1.0);
            let img2 = forward_image(&m2, &camera, &opts());
            let mse2 = img2.mse(&reference);
            let fd = (mse2 - mse0) / eps;
            let an = g.d_opacity[i];
            assert!(
                (fd - an).abs() < 0.05 * fd.abs().max(an.abs()).max(1e-4),
                "point {i}: fd {fd} vs analytic {an}"
            );
        }
    }

    /// Finite-difference check of the SH-DC gradient.
    #[test]
    fn dc_gradient_matches_finite_difference() {
        let m = two_splat_model();
        let camera = cam();
        let reference = {
            let img = forward_image(&m, &camera, &opts());
            let mut shifted = img.clone();
            for p in shifted.pixels_mut() {
                *p = (*p + Vec3::new(0.1, -0.05, 0.02)).max(Vec3::zero());
            }
            shifted
        };
        let (_, mse0, g) = backward_mse(&m, &camera, &reference, &opts());
        for i in 0..m.len() {
            for ch in 0..3 {
                let eps = 1e-3;
                let mut m2 = m.clone();
                m2.sh_mut(i)[ch] += eps;
                let mse2 = forward_image(&m2, &camera, &opts()).mse(&reference);
                let fd = (mse2 - mse0) / eps;
                let an = g.d_dc[i][ch];
                assert!(
                    (fd - an).abs() < 0.05 * fd.abs().max(an.abs()).max(1e-5),
                    "point {i} ch {ch}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_descent_step_reduces_loss() {
        let m = two_splat_model();
        let camera = cam();
        let mut target_model = m.clone();
        target_model.opacities[0] = 0.9;
        target_model.opacities[1] = 0.3;
        let reference = forward_image(&target_model, &camera, &opts());
        let (_, mse0, g) = backward_mse(&m, &camera, &reference, &opts());
        let mut m2 = m.clone();
        for i in 0..m2.len() {
            m2.opacities[i] = (m2.opacities[i] - 50.0 * g.d_opacity[i]).clamp(0.01, 0.99);
        }
        let mse1 = forward_image(&m2, &camera, &opts()).mse(&reference);
        assert!(
            mse1 < mse0,
            "descent step should reduce loss: {mse0} → {mse1}"
        );
    }
}
