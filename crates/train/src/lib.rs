//! Efficiency-aware pruning and training for MetaSapiens (paper §3).
//!
//! Existing PBNR pruning minimizes *point count*; the paper shows latency
//! instead tracks *tile-ellipse intersections* (Fig. 4) and introduces:
//!
//! * **Computational Efficiency (CE)** pruning ([`ce`]): per-point
//!   `CE = Val / Comp` where `Val` counts pixels the point dominates and
//!   `Comp` counts tile intersections (Eqn. 3), aggregated by max over
//!   training poses. Points with the lowest CE are pruned first.
//! * **Scale decay** ([`scale_decay`]): the Weighted-Scale regularizer
//!   `WS = 1/N Σ Sᵢ Gᵢ` with `Gᵢ = (Uᵢ > T)·(Uᵢ − T)` (Eqns. 4–5) added to
//!   the training loss (Eqn. 6) to shrink large, frequently used ellipses.
//! * **Analytic fine-tuning** ([`finetune`]): exact gradients of the volume
//!   rendering equation for opacity and SH-DC, plus the WS gradient for
//!   scales, driven by Adam — the re-training step of Fig. 6.
//! * **The iterative prune→retrain pipeline** ([`pipeline`]): Fig. 6's
//!   procedure — prune R% by CE until the quality loss crosses a threshold,
//!   retrain with scale decay until it recovers, repeat.
//!
//! # Example
//!
//! ```
//! use ms_scene::dataset::TraceId;
//! use ms_train::ce::{compute_ce, CeAggregation, CeOptions};
//!
//! let scene = TraceId::by_name("bonsai").unwrap().build_scene_with_scale(0.005);
//! let cams: Vec<_> = scene.train_cameras.iter().take(2)
//!     .map(|c| ms_scene::Camera { width: 64, height: 48, ..*c })
//!     .collect();
//! let ce = compute_ce(&scene.model, &cams, &CeOptions {
//!     aggregation: CeAggregation::Max, ..CeOptions::default()
//! });
//! assert_eq!(ce.len(), scene.model.len());
//! ```

#![deny(missing_docs)]

pub mod ce;
pub mod finetune;
pub mod grad;
pub mod pipeline;
pub mod prune;
pub mod scale_decay;

pub use ce::{compute_ce, CeAggregation, CeOptions};
pub use finetune::{FineTuneConfig, FineTuneReport, FineTuner};
pub use pipeline::{EfficientPruningConfig, PruningOutcome, QualityMetric};
pub use prune::{prune_fraction, prune_lowest};
pub use scale_decay::{weighted_scale, weighted_scale_grad, ScaleDecayOptions};
