//! Scale decay: the Weighted-Scale (WS) regularizer (Eqns. 4–6).
//!
//! `WS = 1/N Σᵢ Sᵢ Gᵢ` where `Sᵢ` is the point's largest ellipse span and
//! `Gᵢ = (Uᵢ > T)·(Uᵢ − T)` gates on how many tiles the point is used in.
//! Adding `γ·WS` to the training loss shrinks exactly the ellipses that are
//! both large **and** frequently used — the ones that generate tile-ellipse
//! intersections — while leaving small or rarely-used points alone.

use ms_scene::GaussianModel;
use serde::{Deserialize, Serialize};

/// Scale-decay parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleDecayOptions {
    /// Tile-usage threshold `T` of Eqn. 5: points used by fewer tiles do
    /// not participate.
    pub usage_threshold: f32,
    /// Loss weight `γ` of Eqn. 6.
    pub gamma: f32,
}

impl Default for ScaleDecayOptions {
    fn default() -> Self {
        Self {
            usage_threshold: 4.0,
            gamma: 1e-3,
        }
    }
}

/// The gate `Gᵢ` of Eqn. 5.
#[inline]
fn gate(usage: f32, threshold: f32) -> f32 {
    if usage > threshold {
        usage - threshold
    } else {
        0.0
    }
}

/// The Weighted Scale of a model given per-point tile usage `Uᵢ`
/// (see [`crate::ce::compute_tile_usage`]).
///
/// # Panics
///
/// Panics when `usage.len() != model.len()`.
pub fn weighted_scale(model: &GaussianModel, usage: &[f32], options: &ScaleDecayOptions) -> f32 {
    assert_eq!(usage.len(), model.len(), "usage length mismatch");
    if model.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (i, &u) in usage.iter().enumerate() {
        acc += (model.point_extent(i) * gate(u, options.usage_threshold)) as f64;
    }
    (acc / model.len() as f64) as f32
}

/// Gradient of `γ·WS` with respect to each point's **dominant scale axis**.
///
/// `Sᵢ = 3·max_axis(scaleᵢ)`, so `∂(γ·WS)/∂max_axisᵢ = 3γ·Gᵢ/N`; the other
/// two axes receive zero gradient. Returns per-point `(axis, grad)` where
/// `axis ∈ {0,1,2}` indexes the dominant scale component.
///
/// # Panics
///
/// Panics when `usage.len() != model.len()`.
pub fn weighted_scale_grad(
    model: &GaussianModel,
    usage: &[f32],
    options: &ScaleDecayOptions,
) -> Vec<(usize, f32)> {
    assert_eq!(usage.len(), model.len(), "usage length mismatch");
    let n = model.len().max(1) as f32;
    (0..model.len())
        .map(|i| {
            let s = model.scales[i];
            let axis = if s.x >= s.y && s.x >= s.z {
                0
            } else if s.y >= s.z {
                1
            } else {
                2
            };
            let g = gate(usage[i], options.usage_threshold);
            (axis, 3.0 * options.gamma * g / n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_math::{Quat, Vec3};
    use proptest::prelude::*;

    fn model_with_scales(scales: &[Vec3]) -> GaussianModel {
        let mut m = GaussianModel::new(0);
        for &s in scales {
            m.push_solid(Vec3::zero(), s, Quat::identity(), 0.9, Vec3::one());
        }
        m
    }

    #[test]
    fn ws_zero_when_usage_below_threshold() {
        let m = model_with_scales(&[Vec3::splat(1.0), Vec3::splat(2.0)]);
        let opts = ScaleDecayOptions {
            usage_threshold: 10.0,
            gamma: 1.0,
        };
        assert_eq!(weighted_scale(&m, &[5.0, 9.9], &opts), 0.0);
    }

    #[test]
    fn ws_weights_by_excess_usage() {
        let m = model_with_scales(&[Vec3::splat(1.0)]);
        let opts = ScaleDecayOptions {
            usage_threshold: 4.0,
            gamma: 1.0,
        };
        // S = 3.0 (3 × max axis), G = 10 − 4 = 6 → WS = 18.
        let ws = weighted_scale(&m, &[10.0], &opts);
        assert!((ws - 18.0).abs() < 1e-5);
    }

    #[test]
    fn ws_is_mean_over_all_points() {
        // The unused point still divides the sum (1/N over all N).
        let m = model_with_scales(&[Vec3::splat(1.0), Vec3::splat(5.0)]);
        let opts = ScaleDecayOptions {
            usage_threshold: 0.0,
            gamma: 1.0,
        };
        let ws = weighted_scale(&m, &[2.0, 0.0], &opts);
        assert!((ws - 3.0).abs() < 1e-5); // (3·2 + 0)/2
    }

    #[test]
    fn grad_targets_dominant_axis() {
        let m = model_with_scales(&[Vec3::new(0.1, 0.5, 0.2)]);
        let opts = ScaleDecayOptions {
            usage_threshold: 0.0,
            gamma: 1.0,
        };
        let g = weighted_scale_grad(&m, &[8.0], &opts);
        assert_eq!(g[0].0, 1, "y is dominant");
        assert!((g[0].1 - 24.0).abs() < 1e-4); // 3·γ·8/1
    }

    #[test]
    fn grad_zero_for_rarely_used_points() {
        let m = model_with_scales(&[Vec3::splat(2.0)]);
        let opts = ScaleDecayOptions::default();
        let g = weighted_scale_grad(&m, &[1.0], &opts);
        assert_eq!(g[0].1, 0.0);
    }

    #[test]
    fn empty_model_is_zero() {
        let m = GaussianModel::new(0);
        assert_eq!(weighted_scale(&m, &[], &ScaleDecayOptions::default()), 0.0);
    }

    proptest! {
        /// Finite-difference check: WS gradient matches numeric derivative.
        #[test]
        fn grad_matches_finite_difference(
            sx in 0.05f32..2.0, sy in 0.05f32..2.0, sz in 0.05f32..2.0,
            usage in 0.0f32..30.0,
        ) {
            let opts = ScaleDecayOptions { usage_threshold: 4.0, gamma: 1.0 };
            let m = model_with_scales(&[Vec3::new(sx, sy, sz)]);
            let g = weighted_scale_grad(&m, &[usage], &opts);
            let (axis, grad) = g[0];
            // Perturb the dominant axis.
            let eps = 1e-3;
            let mut m2 = m.clone();
            m2.scales[0][axis] += eps;
            // Skip cases where the dominant axis changes under perturbation.
            let dominant_unchanged = {
                let s = m2.scales[0];
                let new_axis = if s.x >= s.y && s.x >= s.z { 0 } else if s.y >= s.z { 1 } else { 2 };
                new_axis == axis
            };
            prop_assume!(dominant_unchanged);
            let ws0 = weighted_scale(&m, &[usage], &opts);
            let ws1 = weighted_scale(&m2, &[usage], &opts);
            let fd = (ws1 - ws0) / eps;
            prop_assert!(
                (fd - grad).abs() < 1e-2 + 1e-3 * grad.abs(),
                "fd {fd} vs grad {grad}"
            );
        }

        /// Shrinking any scale never increases WS.
        #[test]
        fn ws_monotone_in_scale(
            s in 0.1f32..3.0, shrink in 0.1f32..0.99, usage in 0.0f32..30.0,
        ) {
            let opts = ScaleDecayOptions::default();
            let big = model_with_scales(&[Vec3::splat(s)]);
            let small = model_with_scales(&[Vec3::splat(s * shrink)]);
            prop_assert!(
                weighted_scale(&small, &[usage], &opts)
                    <= weighted_scale(&big, &[usage], &opts) + 1e-6
            );
        }
    }
}
