//! Offline stand-in for `rayon`.
//!
//! The build image cannot reach crates.io, so this shim implements the
//! subset of rayon's API the workspace uses — [`scope`], [`Scope::spawn`],
//! [`join`] and [`current_num_threads`] — on top of `std::thread::scope`.
//! There is no work-stealing pool: each `scope` call runs its spawned tasks
//! in rounds of OS threads. Callers (the band rasterizer in `ms-render`)
//! spawn one task per worker and drain a shared queue, so round semantics
//! and pool semantics coincide where it matters.
//!
//! Semantics preserved from rayon:
//! * `scope` returns only after every spawned task (including tasks spawned
//!   from inside other tasks) has finished;
//! * a panicking task propagates out of `scope`;
//! * tasks may borrow from the enclosing stack frame (`'env` lifetime).

use std::sync::Mutex;

type Job<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

/// A scope in which tasks can be spawned (mirrors `rayon::Scope`).
pub struct Scope<'env> {
    jobs: Mutex<Vec<Job<'env>>>,
}

impl<'env> Scope<'env> {
    /// Queue `body` to run before the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.jobs
            .lock()
            .expect("scope poisoned")
            .push(Box::new(body));
    }

    fn take_jobs(&self) -> Vec<Job<'env>> {
        std::mem::take(&mut *self.jobs.lock().expect("scope poisoned"))
    }
}

/// Create a scope, run `op` in it, then run every spawned task to
/// completion before returning (mirrors `rayon::scope`).
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let result = op(&s);
    loop {
        let jobs = s.take_jobs();
        if jobs.is_empty() {
            break;
        }
        let sref = &s;
        std::thread::scope(|ts| {
            let mut handles = Vec::with_capacity(jobs.len());
            for job in jobs {
                handles.push(ts.spawn(move || job(sref)));
            }
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
    }
    result
}

/// Run two closures, potentially in parallel, and return both results
/// (mirrors `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|ts| {
        let hb = ts.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

/// Number of threads a parallel region will use (mirrors
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_before_returning() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_spawns_complete() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::Relaxed);
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tasks_can_borrow_stack_data() {
        let data = [1u32, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum::<u32>() as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
