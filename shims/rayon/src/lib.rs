//! Offline stand-in for `rayon`, backed by a persistent worker pool.
//!
//! The build image cannot reach crates.io, so this shim implements the
//! subset of rayon's API the workspace uses — [`scope`], [`Scope::spawn`],
//! [`join`] and [`current_num_threads`] — on top of a lazily-initialized
//! global pool of long-lived worker threads. The previous revision spawned
//! a fresh round of OS threads per `scope` call; for small frames that
//! per-call spawn cost dominated the parallel stages it was supposed to
//! speed up. Workers are now created once (on the first parallel region)
//! and reused by every subsequent `scope`/`join`, so steady-state frames
//! pay only a queue push per task.
//!
//! Pool size is `RAYON_NUM_THREADS` when set (like upstream rayon), else
//! `std::thread::available_parallelism()`.
//!
//! Queued work is keyed by originating scope and drained **round-robin
//! across scopes** (FIFO within one scope): when several independent
//! parallel regions are in flight at once — the multi-session frame
//! server queues one region per frame stage — each gets an equal share of
//! worker pulls instead of the first-queued region monopolizing the pool.
//! For a single scope this degenerates to the previous plain FIFO.
//!
//! Semantics preserved from rayon:
//! * `scope` returns only after every spawned task (including tasks spawned
//!   from inside other tasks) has finished;
//! * a panicking task propagates out of `scope`;
//! * tasks may borrow from the enclosing stack frame (`'env` lifetime);
//! * the thread calling `scope` participates in executing queued tasks
//!   while it waits ("caller helps"), so nested scopes cannot deadlock the
//!   pool even when every worker is blocked inside an outer scope.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// The global pool
// ---------------------------------------------------------------------------

/// A lifetime-erased task. Safety invariant: the `scope` call whose stack
/// frame the task borrows from does not return until the task has run (the
/// scope waits on its pending counter), so the erased `'env` references
/// stay valid for the task's whole execution.
struct Job(Box<dyn FnOnce() + Send + 'static>);

/// Per-scope FIFO queues drained round-robin.
///
/// A single global FIFO serves one scope's whole task list before the
/// next scope's first task — fine when scopes arrive one at a time, but a
/// multi-session frame server queues *independent* scopes concurrently
/// (one per frame stage), and strict FIFO would let an early large frame
/// starve every other session's frames. Keying queues by scope and
/// rotating between them gives each in-flight scope an equal share of
/// worker pulls, so concurrent frames make interleaved progress. Within
/// one scope, FIFO order is preserved.
struct Queues {
    /// `(scope id, pending jobs)`, in scope arrival order. Invariant: no
    /// deque is empty (drained scopes are removed eagerly).
    queues: Vec<(u64, VecDeque<Job>)>,
    /// Round-robin cursor into `queues`.
    rr: usize,
}

impl Queues {
    fn push(&mut self, scope_id: u64, job: Job) {
        match self.queues.iter_mut().find(|(id, _)| *id == scope_id) {
            Some((_, q)) => q.push_back(job),
            None => self.queues.push((scope_id, VecDeque::from([job]))),
        }
    }

    fn pop(&mut self) -> Option<Job> {
        if self.queues.is_empty() {
            self.rr = 0;
            return None;
        }
        let i = self.rr % self.queues.len();
        let job = self.queues[i]
            .1
            .pop_front()
            .expect("empty scope queue violates the no-empty-deque invariant");
        if self.queues[i].1.is_empty() {
            self.queues.remove(i);
            self.rr = if self.queues.is_empty() {
                0
            } else {
                i % self.queues.len()
            };
        } else {
            self.rr = (i + 1) % self.queues.len();
        }
        Some(job)
    }
}

struct Pool {
    queue: Mutex<Queues>,
    /// Signaled when a job is pushed; workers block here when idle.
    jobs_cv: Condvar,
    workers: usize,
}

impl Pool {
    fn push(&self, scope_id: u64, job: Job) {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .push(scope_id, job);
        self.jobs_cv.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("pool queue poisoned").pop()
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool queue poisoned");
            loop {
                match q.pop() {
                    Some(job) => break job,
                    None => q = pool.jobs_cv.wait(q).expect("pool queue poisoned"),
                }
            }
        };
        // Jobs catch their own panics (see `Scope::spawn`), so a panicking
        // task cannot take a long-lived worker down with it.
        (job.0)();
    }
}

fn pool_size_from_env() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide worker pool, created on first use.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = pool_size_from_env().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(Queues {
                queues: Vec::new(),
                rr: 0,
            }),
            jobs_cv: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// Shared accounting for one `scope` call: outstanding task count plus the
/// first panic payload (rayon also propagates one of possibly many).
struct ScopeState {
    /// Fair-scheduling key: this scope's queue in the pool's round-robin
    /// queue set.
    id: u64,
    sync: Mutex<ScopeSync>,
    done_cv: Condvar,
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeState {
    fn new() -> Self {
        static NEXT_SCOPE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Self {
            id: NEXT_SCOPE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            sync: Mutex::new(ScopeSync {
                pending: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    fn add_task(&self) {
        self.sync.lock().expect("scope poisoned").pending += 1;
    }

    fn finish_task(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut sync = self.sync.lock().expect("scope poisoned");
        if let Some(p) = panic {
            sync.panic.get_or_insert(p);
        }
        sync.pending -= 1;
        if sync.pending == 0 {
            self.done_cv.notify_all();
        }
    }

    /// Block until every task of this scope has finished, running queued
    /// pool jobs (from any scope) in the meantime. The bounded wait below
    /// re-polls the queue so a job pushed between the pop attempt and the
    /// wait cannot strand the caller.
    fn wait_all(&self, pool: &Pool) {
        loop {
            if self.sync.lock().expect("scope poisoned").pending == 0 {
                return;
            }
            match pool.try_pop() {
                Some(job) => (job.0)(),
                None => {
                    let sync = self.sync.lock().expect("scope poisoned");
                    if sync.pending == 0 {
                        return;
                    }
                    let _ = self
                        .done_cv
                        .wait_timeout(sync, Duration::from_micros(200))
                        .expect("scope poisoned");
                }
            }
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.sync.lock().expect("scope poisoned").panic.take()
    }
}

/// A scope in which tasks can be spawned (mirrors `rayon::Scope`).
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like rayon's scope.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queue `body` on the worker pool; it runs before the enclosing
    /// [`scope`] call returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.state.add_task();
        let state = Arc::clone(&self.state);
        // The task needs `&Scope<'env>` (for nested spawns). The scope
        // lives on the stack of the `scope` call, which outlives every
        // task, so smuggling the address through a usize is sound.
        let scope_addr = self as *const Scope<'env> as usize;
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // SAFETY: `scope` does not return before `pending` drops to
            // zero, which happens strictly after this closure finishes, so
            // the `Scope` (and everything `body` borrows from the caller's
            // frame) is still alive here.
            let scope = unsafe { &*(scope_addr as *const Scope<'env>) };
            let result = catch_unwind(AssertUnwindSafe(|| body(scope)));
            state.finish_task(result.err());
        });
        // SAFETY: lifetime erasure to hand the job to long-lived workers.
        // The `'env` data it captures outlives its execution because the
        // owning `scope` call blocks until the task completes (see above).
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        pool().push(self.state.id, Job(job));
    }
}

/// Create a scope, run `op` in it, then run every spawned task to
/// completion before returning (mirrors `rayon::scope`).
///
/// Tasks execute on the persistent worker pool; the calling thread helps
/// drain the queue while it waits. A panic in `op` or in any task
/// propagates out of `scope`, but only after every spawned task has
/// finished — tasks may borrow from the caller's stack frame, so the frame
/// must stay intact until they are done.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope {
        state: Arc::new(ScopeState::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&s)));
    s.state.wait_all(pool());
    if let Some(panic) = s.state.take_panic() {
        resume_unwind(panic);
    }
    match result {
        Ok(r) => r,
        Err(panic) => resume_unwind(panic),
    }
}

/// Run two closures, potentially in parallel, and return both results
/// (mirrors `rayon::join`). `b` runs on the pool while the calling thread
/// runs `a`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("join: second closure did not run"))
}

/// Number of threads a parallel region will use (mirrors
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    pool().workers.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_before_returning() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_spawns_complete() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::Relaxed);
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tasks_can_borrow_stack_data() {
        let data = [1u32, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum::<u32>() as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn task_panic_propagates_out_of_scope() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("task boom"));
            });
        }));
        let payload = caught.expect_err("scope should propagate the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "task boom");
    }

    #[test]
    fn panicking_task_does_not_kill_the_pool() {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| s.spawn(|_| panic!("first")));
        }));
        // The pool must still execute work after a task panicked.
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn sibling_tasks_finish_even_when_one_panics() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            scope(|s| {
                for i in 0..8 {
                    let c = Arc::clone(&c2);
                    s.spawn(move |_| {
                        if i == 3 {
                            panic!("middle task");
                        }
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert_eq!(counter.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn workers_are_reused_across_scopes() {
        // 100 scopes × 4 tasks. The per-scope-spawn implementation this
        // replaced created a fresh unnamed OS thread per task (ThreadIds
        // are never reused), so it would log ~400 distinct unnamed
        // threads. The pool runs every task either on a named
        // "rayon-shim-*" worker or on a thread that is helping while
        // blocked in its own `scope` call. The generous slack on the
        // unnamed bound tolerates helpers from concurrently running tests
        // that enter `scope` from unnamed threads.
        let seen = Mutex::new(HashSet::new());
        for _ in 0..100 {
            scope(|s| {
                for _ in 0..4 {
                    let seen = &seen;
                    s.spawn(move |_| {
                        let t = std::thread::current();
                        seen.lock()
                            .unwrap()
                            .insert((t.id(), t.name().map(String::from)));
                    });
                }
            });
        }
        let seen = seen.into_inner().unwrap();
        let shim_workers = seen
            .iter()
            .filter(|(_, n)| n.as_deref().is_some_and(|n| n.starts_with("rayon-shim-")))
            .count();
        assert!(
            shim_workers <= current_num_threads(),
            "{shim_workers} distinct pool workers seen, pool has {}",
            current_num_threads()
        );
        let unnamed = seen.iter().filter(|(_, n)| n.is_none()).count();
        assert!(
            unnamed <= 50,
            "{unnamed} distinct unnamed threads ran tasks — looks like \
             per-scope thread spawning is back"
        );
    }

    #[test]
    fn many_scopes_from_many_threads() {
        // Stress cross-scope interleaving on the shared pool.
        std::thread::scope(|ts| {
            for _ in 0..4 {
                ts.spawn(|| {
                    for _ in 0..50 {
                        let counter = AtomicUsize::new(0);
                        scope(|s| {
                            for _ in 0..8 {
                                let counter = &counter;
                                s.spawn(move |_| {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                        assert_eq!(counter.load(Ordering::Relaxed), 8);
                    }
                });
            }
        });
    }

    #[test]
    fn queues_round_robin_across_scopes() {
        // Drive the queue set directly: three scopes with 3/2/1 jobs must
        // drain interleaved, not scope-by-scope.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut queues = Queues {
            queues: Vec::new(),
            rr: 0,
        };
        for (scope_id, tag_count) in [(1u64, 3usize), (2, 2), (3, 1)] {
            for _ in 0..tag_count {
                let order = Arc::clone(&order);
                queues.push(
                    scope_id,
                    Job(Box::new(move || order.lock().unwrap().push(scope_id))),
                );
            }
        }
        while let Some(job) = queues.pop() {
            (job.0)();
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3, 1, 2, 1]);
    }

    #[test]
    fn deeply_nested_scopes_do_not_deadlock() {
        // Every worker may be blocked inside an outer scope; the caller-
        // helps rule must still guarantee progress.
        fn nest(depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let total = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..2 {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(nest(depth - 1), Ordering::Relaxed);
                    });
                }
            });
            total.load(Ordering::Relaxed)
        }
        assert_eq!(nest(4), 16);
    }
}
