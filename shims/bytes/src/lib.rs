//! Offline stand-in for `bytes`.
//!
//! The build image cannot reach crates.io, so this shim provides the subset
//! of the `bytes` API used by `ms-scene::io`'s checkpoint codec: [`Bytes`],
//! [`BytesMut`] and the little-endian [`Buf`]/[`BufMut`] accessors. Backing
//! storage is a plain `Vec<u8>` — no refcounted zero-copy slicing, which the
//! codec does not use.

use std::ops::Deref;

/// Immutable byte buffer (mirrors `bytes::Bytes`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// Growable byte buffer (mirrors `bytes::BytesMut`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Little-endian write access (the used subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian read access (the used subset of `bytes::Buf`).
///
/// Implemented for `&[u8]`, advancing the slice as values are read.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `N` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `N` bytes remain (mirrors upstream).
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer exhausted");
        let (head, rest) = self.split_at(N);
        *self = rest;
        head.try_into().expect("split_at guarantees length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 18);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(&[1, 2, 3, 4]);
        let b = buf.freeze();
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}
