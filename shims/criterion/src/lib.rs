//! Offline stand-in for `criterion`.
//!
//! The build image cannot reach crates.io, so this shim implements the
//! macro and builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], benchmark groups and the
//! `sample_size`/`warm_up_time`/`measurement_time` knobs — on plain
//! `std::time::Instant` timing.
//!
//! Reporting is simpler than upstream (median / mean / min over samples,
//! printed to stdout; no statistical regression or HTML reports), but the
//! measured quantity is the same: wall time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// How batched inputs are grouped (mirrors `criterion::BatchSize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run every registered group (mirrors `Criterion::final_summary`; a
    /// no-op here, kept for `criterion_main!` compatibility).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times closures (mirrors `criterion::Bencher`).
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses, counting iterations
        // to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up with a handful of runs to estimate per-iteration cost.
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        let mut routine_time = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            routine_time += t.elapsed();
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }
        let per_iter = routine_time.as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 100_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                elapsed += t.elapsed();
            }
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{name:<40} time: [min {} median {} mean {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group runner (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = quick();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
