//! Offline stand-in for `proptest`.
//!
//! The build image cannot reach crates.io, so this shim implements the
//! subset of proptest used by the workspace's property tests:
//!
//! * the [`proptest!`] macro (`fn name(x in strategy, ..) { body }`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies over floats, integers, and booleans
//!   ([`bool::ANY`]), plus tuples of strategies,
//! * [`collection::vec`] with exact or ranged sizes,
//! * [`array::uniform3`] / [`array::uniform9`].
//!
//! Differences from upstream, deliberately accepted for an offline shim:
//! cases are drawn from a seed derived from the test name (deterministic
//! across runs), there is no shrinking (the failing input is printed
//! as-is), and `prop_assume!` skips the case instead of retrying it.

use std::ops::Range;

/// Number of cases each property runs.
pub const CASES: usize = 96;

/// Deterministic RNG used to drive property tests.
pub mod test_runner {
    use rand::SeedableRng;

    /// Test-case RNG (a seeded [`rand::rngs::StdRng`]).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// Derive a deterministic RNG from the test's name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self(rand::rngs::StdRng::seed_from_u64(h))
        }
    }
}

/// A generator of test-case values (mirrors `proptest::strategy::Strategy`
/// with sampling in place of value trees — no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    /// Uniform boolean strategy — see [`ANY`].
    #[derive(Debug, Clone)]
    pub struct Any;

    /// Strategy drawing `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut super::test_runner::TestRng) -> bool {
            use rand::Rng;
            rng.0.gen_range(0u32..2) == 1
        }
    }
}

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{test_runner::TestRng, Strategy};

    /// Length specification for [`vec()`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let n = rng.0.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (mirrors `proptest::array`).
pub mod array {
    use super::{test_runner::TestRng, Strategy};

    /// Strategy for `[S::Value; N]` drawing each element from `element`.
    #[derive(Debug, Clone)]
    pub struct ArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    /// `[T; 3]` strategy.
    pub fn uniform3<S: Strategy>(element: S) -> ArrayStrategy<S, 3> {
        ArrayStrategy { element }
    }

    /// `[T; 9]` strategy.
    pub fn uniform9<S: Strategy>(element: S) -> ArrayStrategy<S, 9> {
        ArrayStrategy { element }
    }
}

/// The `proptest!` macro: a deterministic N-case sampling loop per test.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "property {} failed at case {} [{}]: {}",
                            stringify!($name), case, inputs, msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fallible assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("prop_assert!({}) failed", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fallible equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                a,
                b
            ));
        }
    }};
}

/// Discard the current case when its precondition fails. This shim skips
/// the case (upstream proptest redraws); properties stay sound, coverage
/// of narrow preconditions is merely lower.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_collections_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..200 {
            let x = Strategy::sample(&(-3.0f32..9.0), &mut rng);
            assert!((-3.0..9.0).contains(&x));
            let v = Strategy::sample(&crate::collection::vec(0u32..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
            let a = Strategy::sample(&crate::array::uniform3(0.0f64..1.0), &mut rng);
            assert!(a.iter().all(|&e| (0.0..1.0).contains(&e)));
            let (flag, n) = Strategy::sample(&(crate::bool::ANY, 0u32..4), &mut rng);
            assert!(matches!(flag, true | false));
            assert!(n < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_drives_cases(x in 0u32..100, v in crate::collection::vec(0i32..10, 3)) {
            prop_assume!(x != 17);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
