//! Offline stand-in for `serde`.
//!
//! The build image cannot reach crates.io, and nothing in this workspace
//! actually serializes through serde's data model (the only binary codec is
//! the hand-written one in `ms-scene::io`; configs round-trip via `Clone` +
//! `PartialEq`). The `#[derive(Serialize, Deserialize)]` markers are kept on
//! types so that swapping in the real serde later is a manifest change, not
//! a code change.
//!
//! `Serialize` and `Deserialize` are blanket-implemented for every type, so
//! generic bounds (if any appear later) stay satisfiable; the derive macros
//! re-exported from `serde_derive` expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
