//! Offline stand-in for `serde_derive`.
//!
//! The build image has no network access, so the real `serde_derive` cannot
//! be fetched. This workspace only uses `#[derive(Serialize, Deserialize)]`
//! as a marker (no self-describing format is wired up anywhere; the model
//! checkpoint codec in `ms-scene` is hand-written binary), so the derives
//! here accept the same input — including `#[serde(...)]` field attributes —
//! and expand to nothing. The trait obligations are discharged by blanket
//! impls in the sibling `serde` shim.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
